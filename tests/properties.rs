//! Property-based tests (proptest) on the public API: invariants that must
//! hold for arbitrary parameters, not just the benchmarked ones.

use proptest::prelude::*;
use transactional_conflict::prelude::*;

fn conflicts() -> impl Strategy<Value = Conflict> {
    (1.0f64..1e6, 2usize..12).prop_map(|(b, k)| Conflict::chain(b, k))
}

proptest! {
    /// Every policy's grace period lies in [0, B/(k-1)] — the support the
    /// theory prescribes (waiting longer than B/(k-1) is dominated).
    #[test]
    fn grace_periods_stay_in_support(c in conflicts(), seed in 0u64..1000) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let hi = c.abort_cost / c.waiters() + 1e-9;
        for p in [
            Box::new(RandRw) as Box<dyn GracePolicy>,
            Box::new(RandRwUniform),
            Box::new(RandRa),
            Box::new(DetRw),
        ] {
            let x = p.grace(&c, &mut rng);
            prop_assert!((0.0..=hi).contains(&x), "{}: {x} outside [0, {hi}]", p.name());
        }
        // DetRa waits B (its own support).
        let x = DetRa.grace(&c, &mut rng);
        prop_assert!(x == c.abort_cost);
    }

    /// Mean-aware strategies also respect the support, for any µ.
    #[test]
    fn mean_policies_stay_in_support(
        c in conflicts(),
        mu in 0.001f64..1e6,
        seed in 0u64..1000,
    ) {
        let mut rng = Xoshiro256StarStar::new(seed);
        let hi = c.abort_cost / c.waiters() + 1e-9;
        let x = RandRwMean::new(mu).grace(&c, &mut rng);
        prop_assert!((0.0..=hi).contains(&x));
        let x = RandRaMean::new(mu).grace(&c, &mut rng);
        prop_assert!((0.0..=hi).contains(&x));
    }

    /// Online cost never beats the offline optimum, in either mode.
    #[test]
    fn cost_dominates_opt(c in conflicts(), d in 1e-6f64..1e7, x in 0f64..1e7) {
        prop_assert!(rw_cost(&c, d, x) >= rw_opt(&c, d) - 1e-9);
        prop_assert!(ra_cost(&c, d, x) >= ra_opt(&c, d) - 1e-9);
    }

    /// The cost model is monotone in the grace period on the abort branch:
    /// waiting longer before an abort only adds cost.
    #[test]
    fn abort_branch_cost_monotone(c in conflicts(), d in 1.0f64..1e6, dx in 0.0f64..0.5) {
        let x1 = d * (1.0 - dx) * 0.9;
        let x2 = x1 * 0.5;
        // both x1, x2 < d: abort branch
        prop_assert!(rw_cost(&c, d, x2) <= rw_cost(&c, d, x1) + 1e-9);
        prop_assert!(ra_cost(&c, d, x2) <= ra_cost(&c, d, x1) + 1e-9);
    }

    /// Every PDF in the family integrates to 1 and has non-negative density
    /// over its support, for arbitrary B and k.
    #[test]
    fn pdfs_are_distributions(b in 1.0f64..1e5, k in 2usize..10) {
        let pdfs: Vec<Box<dyn GracePdf>> = {
            let mut v: Vec<Box<dyn GracePdf>> = vec![
                Box::new(RwUnconstrainedPdf::new(b, k)),
                Box::new(RwUniformPdf::new(b, k)),
                Box::new(RaUnconstrainedPdf::new(b, k)),
                Box::new(RaMeanPdf::new(b, k)),
            ];
            if k == 2 {
                v.push(Box::new(RwMeanK2Pdf::new(b)));
            } else {
                v.push(Box::new(RwMeanChainPdf::new(b, k)));
            }
            v
        };
        for p in pdfs {
            let mass = p.total_mass();
            prop_assert!((mass - 1.0).abs() < 1e-3, "mass {mass}");
            for i in 0..=20 {
                let x = p.hi() * i as f64 / 20.0;
                prop_assert!(p.density(x) >= -1e-9);
            }
            // CDF endpoints.
            prop_assert!(p.cdf(0.0).abs() < 1e-6);
            prop_assert!((p.cdf(p.hi()) - 1.0).abs() < 1e-3);
        }
    }

    /// Quantile inverts the CDF for the closed-form strategies.
    #[test]
    fn quantile_inverts_cdf(b in 1.0f64..1e5, k in 2usize..10, u in 0.0f64..=1.0) {
        let p = RwUnconstrainedPdf::new(b, k);
        prop_assert!((p.cdf(p.quantile(u)) - u).abs() < 1e-6);
        let q = RaUnconstrainedPdf::new(b, k);
        prop_assert!((q.cdf(q.quantile(u)) - u).abs() < 1e-6);
    }

    /// Backoff inflation is monotone and resets cleanly.
    #[test]
    fn backoff_monotone(b in 1.0f64..1e6, bumps in 0u32..40) {
        let mut s = BackoffState::default();
        let mut prev = s.effective_cost(b);
        for _ in 0..bumps {
            s.bump();
            let now = s.effective_cost(b);
            prop_assert!(now >= prev);
            prev = now;
        }
        s.reset();
        prop_assert!((s.effective_cost(b) - b).abs() < 1e-12);
    }

    /// Competitive-ratio formulas: sane ranges everywhere.
    #[test]
    fn ratio_formulas_in_range(k in 2usize..64, b in 1.0f64..1e6, mu in 0.001f64..1e6) {
        let e = std::f64::consts::E;
        prop_assert!(rand_rw_ratio(k) >= e / (e - 1.0) - 1e-9);
        prop_assert!(rand_rw_ratio(k) <= 2.0 + 1e-9);
        prop_assert!(rand_ra_ratio(k) >= e / (e - 1.0) - 1e-9);
        prop_assert!(det_rw_ratio(k) > 2.0 && det_rw_ratio(k) <= 3.0);
        prop_assert!(rand_rw_mean_ratio(k, b, mu) >= 1.0);
        prop_assert!(rand_ra_mean_ratio(k, b, mu) >= 1.0);
        // Corollary 1's bound is always in [1, 2).
        let w = mu / b;
        let bound = corollary1_bound(w);
        prop_assert!((1.0..2.0).contains(&bound));
    }

    /// The ski-rental mapping is exact for arbitrary parameters (§4.2).
    #[test]
    fn ski_rental_mapping_exact(b in 1.0f64..1e5, d in 0.001f64..1e6, x in 0.0f64..1e6) {
        let c = Conflict::pair(b);
        let s = from_conflict(&c);
        let lhs = s.cost_continuous(d, x);
        let rhs = ra_cost(&c, d, x);
        // The two differ only on the measure-zero boundary d == x.
        if (d - x).abs() > 1e-9 {
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
    }

    /// Distribution sampling stays positive and near its nominal mean.
    #[test]
    fn distributions_sane(mu in 2.0f64..2000.0, seed in 0u64..100) {
        let mut rng = Xoshiro256StarStar::new(seed);
        for d in figure2_distributions(mu) {
            for _ in 0..50 {
                let x = d.sample(&mut rng);
                prop_assert!(x > 0.0, "{}", d.name());
            }
            prop_assert!((d.mean() - mu).abs() < 1e-9);
        }
    }
}

mod stats_merge_properties {
    //! The engine-layer tally is a commutative monoid (up to the order of
    //! the raw latency-sample Vec): merging shards must give the same
    //! aggregate whatever the grouping or order — including the new
    //! shed/backpressure counters and the streaming latency histogram.

    use super::*;
    use rand::RngCore;

    /// A pseudo-random but fully deterministic `EngineStats` derived from
    /// one seed. f64 accumulators are small integers so that their sums
    /// are exact and associativity can be asserted with `==`.
    fn arb_stats(seed: u64) -> EngineStats {
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut draw = |m: u64| rng.next_u64() % m;
        let mut s = EngineStats {
            commits: draw(1000),
            fallbacks: draw(10),
            wait_cycles: draw(100_000),
            total_latency: draw(100_000),
            conflicts: draw(500),
            delayed_conflicts: draw(300),
            saved_by_delay: draw(200),
            sheds: draw(50),
            queue_depth_max: draw(64),
            cycles: draw(1_000_000),
            ..Default::default()
        };
        for _ in 0..draw(6) {
            s.record_abort(AbortKind::Conflict, draw(100));
            s.record_abort(AbortKind::Capacity, draw(100));
        }
        for _ in 0..draw(8) {
            s.record_chain(draw(20) as usize);
        }
        for _ in 0..draw(10) {
            // Power-of-two OPT keeps cost/OPT exactly representable, so the
            // f64 accumulators stay associative under reordering (the
            // property under test is merge's algebra, not float rounding).
            s.record_trial(draw(1000) as f64, (1u64 << draw(5)) as f64);
        }
        for _ in 0..draw(12) {
            s.record_latency(draw(1 << 20));
        }
        s
    }

    fn merged(parts: &[&EngineStats]) -> EngineStats {
        let mut out = EngineStats::default();
        for p in parts {
            out.merge(p);
        }
        out
    }

    /// Canonicalize the one order-sensitive field (the raw sample Vec) so
    /// full-struct equality expresses order-independence.
    fn canon(mut s: EngineStats) -> EngineStats {
        s.latencies.sort_unstable();
        s
    }

    proptest! {
        #[test]
        fn merge_is_associative(sa in 0u64..5000, sb in 0u64..5000, sc in 0u64..5000) {
            let (a, b, c) = (arb_stats(sa), arb_stats(sb), arb_stats(sc));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        #[test]
        fn merge_is_order_independent(sa in 0u64..5000, sb in 0u64..5000, sc in 0u64..5000) {
            let (a, b, c) = (arb_stats(sa), arb_stats(sb), arb_stats(sc));
            let abc = merged(&[&a, &b, &c]);
            let cba = merged(&[&c, &b, &a]);
            let bac = merged(&[&b, &a, &c]);
            prop_assert_eq!(canon(abc.clone()), canon(cba));
            prop_assert_eq!(canon(abc.clone()), canon(bac));
            // Spot-check the counters the server leans on.
            prop_assert_eq!(abc.sheds, a.sheds + b.sheds + c.sheds);
            prop_assert_eq!(
                abc.queue_depth_max,
                a.queue_depth_max.max(b.queue_depth_max).max(c.queue_depth_max)
            );
            prop_assert_eq!(
                abc.latency_hist.count(),
                a.latency_hist.count() + b.latency_hist.count() + c.latency_hist.count()
            );
        }

        #[test]
        fn sharded_merged_ignores_shard_order(sa in 0u64..5000, sb in 0u64..5000, sc in 0u64..5000) {
            let mut fwd = ShardedStats::new(0);
            fwd.per_thread = vec![arb_stats(sa), arb_stats(sb), arb_stats(sc)];
            fwd.global = arb_stats(sa ^ sb ^ sc);
            let mut rev = fwd.clone();
            rev.per_thread.reverse();
            prop_assert_eq!(canon(fwd.merged()), canon(rev.merged()));
            prop_assert_eq!(fwd.sheds(), rev.sheds());
            prop_assert_eq!(fwd.commits(), rev.commits());
        }
    }
}

mod sim_properties {
    //! Property tests of the HTM simulator itself: random transaction
    //! programs over a small shared address space must never violate
    //! coherence, always make progress under a delay policy, and stay
    //! deterministic.

    use super::*;

    use std::sync::Arc;

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..12).prop_map(Op::Read),
            (0u64..12).prop_map(Op::Write),
            (0u32..40).prop_map(Op::Compute),
        ]
    }

    fn arb_program() -> impl Strategy<Value = TxnProgram> {
        prop::collection::vec(arb_op(), 1..12).prop_map(|ops| TxnProgram { ops })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_programs_preserve_coherence_and_progress(
            programs in prop::collection::vec(arb_program(), 1..6),
            cores in 2usize..8,
            seed in 0u64..1000,
        ) {
            let w = Arc::new(FixedProgramsWorkload::new(programs));
            let mut cfg = SimConfig::new(cores, Arc::new(RandRw));
            cfg.horizon = 60_000;
            cfg.seed = seed;
            let mut sim = Simulator::new(cfg, w);
            sim.run();
            prop_assert!(sim.check_coherence().is_ok(), "{:?}", sim.check_coherence());
            prop_assert!(sim.stats.commits() > 0, "no progress: {:?}", sim.stats.aborts());
        }

        #[test]
        fn random_programs_deterministic(
            programs in prop::collection::vec(arb_program(), 1..4),
            seed in 0u64..100,
        ) {
            let run = || {
                let w = Arc::new(FixedProgramsWorkload::new(programs.clone()));
                let mut cfg = SimConfig::new(4, Arc::new(RandRa));
                cfg.mode = ResolutionMode::RequestorAborts;
                cfg.horizon = 30_000;
                cfg.seed = seed;
                let mut sim = Simulator::new(cfg, w);
                sim.run();
                (sim.stats.commits(), sim.stats.aborts(), sim.stats.global.conflicts)
            };
            prop_assert_eq!(run(), run());
        }
    }
}

/// Sequential model check of the STM stack against `Vec` (not proptest-
/// randomized input, but a long deterministic mixed workload).
#[test]
fn stm_stack_matches_vec_model() {
    let stm = Stm::new(TStack::words(64), 1);
    let st = TStack::new(0, 64);
    let mut ctx = TxCtx::new(
        &stm,
        0,
        NoDelay::requestor_aborts(),
        Xoshiro256StarStar::new(8),
    );
    let mut model: Vec<u64> = Vec::new();
    let mut rng = Xoshiro256StarStar::new(9);
    for step in 0..2_000u64 {
        if uniform01(&mut rng) < 0.6 && model.len() < 64 {
            let pushed = ctx.run(|tx| st.push(tx, step));
            assert!(pushed);
            model.push(step);
        } else {
            let got = ctx.run(|tx| st.pop(tx));
            assert_eq!(got, model.pop());
        }
    }
    assert_eq!(st.contents_direct(&stm), model);
}

/// Batch-aware group commit must be observationally equivalent to per-tx
/// commit: for arbitrary batches — disjoint writes, overlapping
/// commutative increments, overlapping absolute writes, interleaved
/// reads — the final heap (every key, not just the sum) is identical,
/// and grouping never spends *more* clock bumps.
mod group_commit_equivalence {
    use super::*;

    /// One transaction-body step: `kind % 3` selects read / set / add.
    type Step = (usize, u8, u64);

    fn run_steps<P: GracePolicy>(tx: &mut Tx<'_, '_, P>, steps: &[Step]) -> Result<(), Abort> {
        for &(a, kind, v) in steps {
            match kind % 3 {
                0 => {
                    tx.read(a)?;
                }
                1 => tx.write(a, v)?,
                _ => {
                    tx.write_add(a, v)?;
                }
            }
        }
        Ok(())
    }

    const WORDS: usize = 8;

    fn batches() -> impl Strategy<Value = Vec<Vec<Step>>> {
        prop::collection::vec(
            prop::collection::vec((0..WORDS, 0u8..3, 1u64..100), 1..4),
            1..12,
        )
    }

    proptest! {
        #[test]
        fn grouped_commit_matches_per_tx_heap(batch in batches()) {
            // Grouped: speculate the whole batch, commit through the
            // planner, re-run evictions per-tx inside the fallback hook
            // (the executor's protocol).
            let grouped = Stm::new(WORDS, 1);
            let mut ctx = TxCtx::new(
                &grouped,
                0,
                NoDelay::requestor_aborts(),
                Xoshiro256StarStar::new(1),
            );
            let mut members: Vec<PreparedTx> = batch
                .iter()
                .map(|steps| {
                    let mut p = PreparedTx::new();
                    ctx.speculate_into(&mut p, |tx| run_steps(tx, steps))
                        .expect("single-threaded speculation cannot conflict");
                    p
                })
                .collect();
            let mut gc = GroupCommit::new();
            let mut outcomes = Vec::new();
            let mut stats = EngineStats::default();
            gc.commit_batch_with(&grouped, 0, &mut members, &mut stats, &mut outcomes, |mi| {
                ctx.run(|tx| run_steps(tx, &batch[mi]));
            });

            // Per-tx: the same bodies, committed one by one in order.
            let per_tx = Stm::new(WORDS, 1);
            let mut ctx = TxCtx::new(
                &per_tx,
                0,
                NoDelay::requestor_aborts(),
                Xoshiro256StarStar::new(2),
            );
            for steps in &batch {
                ctx.run(|tx| run_steps(tx, steps));
            }

            // Per-key state must be independent of commit grouping.
            prop_assert_eq!(grouped.snapshot_direct(), per_tx.snapshot_direct());
            prop_assert!(
                grouped.clock_value() <= per_tx.clock_value(),
                "grouping must never add clock bumps ({} vs {})",
                grouped.clock_value(),
                per_tx.clock_value()
            );
        }
    }
}

/// MVCC snapshot reads must be atomic with respect to writer commits:
/// with every writer transaction adding 1 to *all* of `K` cells, the heap
/// sum is a multiple of `K` at every clock value — so any snapshot range
/// sum that is *not* a multiple of `K` is a torn read (a mix of two
/// committed states), and any sum that goes backwards within one reader
/// violates snapshot monotonicity. This is the concurrent analogue of the
/// executor's `GetRange`: sum-over-cells served from one `run_snapshot`.
mod snapshot_atomicity {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn concurrent_range_sums_hit_committed_states_only(
            k in 2usize..7,
            seed in 0u64..1000,
        ) {
            const WRITERS: usize = 2;
            const READERS: usize = 2;
            const TXNS_PER_WRITER: u64 = 1_500;
            let stm = Stm::new(k, WRITERS + READERS);
            let done = AtomicBool::new(false);
            let torn = std::thread::scope(|s| {
                let (stm, done) = (&stm, &done);
                let mut readers = Vec::new();
                for r in 0..READERS {
                    readers.push(s.spawn(move || {
                        let mut ctx = TxCtx::new(
                            stm,
                            WRITERS + r,
                            NoDelay::requestor_wins(),
                            Xoshiro256StarStar::new(seed ^ r as u64),
                        );
                        let mut last = 0u64;
                        while !done.load(Ordering::SeqCst) {
                            let sum = ctx.run_snapshot(|snap| {
                                let mut acc = 0u64;
                                for a in 0..k {
                                    acc += snap.read(a)?;
                                }
                                Ok(acc)
                            });
                            if !sum.is_multiple_of(k as u64) || sum < last {
                                return Err((last, sum));
                            }
                            last = sum;
                        }
                        Ok(last)
                    }));
                }
                for w in 0..WRITERS {
                    s.spawn(move || {
                        let mut ctx = TxCtx::new(
                            stm,
                            w,
                            NoDelay::requestor_wins(),
                            Xoshiro256StarStar::new(seed.wrapping_add(w as u64)),
                        );
                        for _ in 0..TXNS_PER_WRITER {
                            ctx.run(|tx| {
                                for a in 0..k {
                                    tx.write_add(a, 1)?;
                                }
                                Ok(())
                            });
                        }
                        done.store(true, Ordering::SeqCst);
                    });
                }
                readers
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            });
            let final_sum = k as u64 * WRITERS as u64 * TXNS_PER_WRITER;
            for outcome in torn {
                match outcome {
                    Err((last, sum)) => prop_assert!(
                        false,
                        "torn or regressed snapshot sum: {last} -> {sum} (k = {k})"
                    ),
                    Ok(last) => prop_assert!(
                        last <= final_sum,
                        "snapshot observed a future state: {last} > {final_sum}"
                    ),
                }
            }
            // Every writer increment landed exactly once.
            prop_assert_eq!(
                stm.snapshot_direct().iter().sum::<u64>(),
                final_sum
            );
        }
    }
}

/// The shard-major heap layout must map keys to hot-array slots
/// bijectively — every key gets exactly one slot, no two keys collide —
/// and must never place keys of different shards on the same padded
/// cache line (that would reintroduce the false sharing the layout
/// exists to eliminate).
mod shard_layout_bijection {
    use super::*;

    proptest! {
        #[test]
        fn key_to_slot_is_a_bijection(words in 1usize..500, shards in 1usize..16) {
            let l = ShardLayout::new(words, shards);
            let mut hit = vec![false; l.slots()];
            for k in 0..words {
                let s = l.slot(k);
                prop_assert!(s < l.slots(), "slot {s} out of bounds (words={words}, shards={shards})");
                prop_assert!(!hit[s], "keys collide at slot {s} (words={words}, shards={shards})");
                hit[s] = true;
            }
        }

        #[test]
        fn shards_never_share_a_cache_line(words in 1usize..300, shards in 1usize..12) {
            let l = ShardLayout::new(words, shards);
            // line -> owning shard; a line owned by two shards is a bug.
            let mut owner = std::collections::HashMap::new();
            for k in 0..words {
                let line = ShardLayout::line_of_slot(l.slot(k));
                let shard = k % l.shards();
                if let Some(&prev) = owner.get(&line) {
                    prop_assert!(
                        prev == shard,
                        "line {line} shared by shards {prev} and {shard} (words={words}, shards={shards})"
                    );
                } else {
                    owner.insert(line, shard);
                }
            }
        }

        #[test]
        fn sharded_heap_round_trips_every_key(words in 1usize..200, shards in 1usize..8) {
            // End-to-end through the Stm: direct writes land on the right
            // key regardless of the physical permutation.
            let stm = Stm::with_layout(words, 1, shards, ResolutionMode::RequestorAborts);
            for k in 0..words {
                stm.write_direct(k, k as u64 + 1000);
            }
            for k in 0..words {
                prop_assert_eq!(stm.read_direct(k), k as u64 + 1000);
            }
            // snapshot_direct is key-ordered, not slot-ordered.
            let snap = stm.snapshot_direct();
            prop_assert_eq!(snap.len(), words);
            for (k, v) in snap.iter().enumerate() {
                prop_assert_eq!(*v, k as u64 + 1000);
            }
        }
    }
}
