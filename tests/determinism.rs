//! Satellite of the engine-layer refactor: every substrate, driven through
//! the shared `tcp_core::engine` seed fan-out, must be bit-reproducible —
//! two runs with the same master seed produce *identical* `EngineStats`
//! (full struct equality, not just a couple of counters).

use std::sync::Arc;

use transactional_conflict::prelude::*;

/// The HTM simulator is single-threaded and cycle-granular: everything,
/// including per-core shards and the run-global counters, must match.
#[test]
fn htm_sim_same_seed_identical_stats() {
    let run = |seed: u64| -> ShardedStats {
        let mut cfg = SimConfig::new(6, Arc::new(RandRw));
        cfg.horizon = 150_000;
        cfg.seed = seed;
        let mut sim = Simulator::new(cfg, Arc::new(StackWorkload::default()));
        sim.run();
        sim.stats.clone()
    };
    let a = run(7);
    assert_eq!(a, run(7), "same seed must reproduce every counter");
    assert!(
        a.commits() > 0 && a.global.conflicts > 0,
        "workload too idle"
    );
    let b = run(8);
    assert_ne!(
        a.merged().commits,
        b.merged().commits,
        "different seeds should visibly diverge on a contended stack"
    );
}

/// The ski-rental Monte-Carlo harness: same fan-out stream, same trials —
/// identical cost accumulators (exact f64 equality).
#[test]
fn ski_rental_same_seed_identical_stats() {
    let run = |seed: u64| -> EngineStats {
        let mut fan = SeedFanout::new(seed);
        let p = SkiRental::new(100.0);
        // Exercise both a classic strategy and the engine-layer bridge.
        let mut stats = simulate(
            &p,
            &ContinuousExp,
            &FixedSeason(60.0),
            20_000,
            &mut fan.stream(),
        );
        stats.merge(&simulate(
            &p,
            &ArbiterRental::new(RandRa),
            &FixedSeason(60.0),
            20_000,
            &mut fan.stream(),
        ));
        stats
    };
    let a = run(3);
    assert_eq!(a, run(3));
    assert_eq!(a.trials, 40_000);
    assert!(a.aborts > 0 && a.commits > 0, "both outcomes must occur");
    assert_ne!(a, run(4), "different seeds must draw different seasons");
}

/// The STM runs real threads, so wall-clock counters are only meaningful
/// under contention; a single-context seeded workload must nevertheless
/// reproduce its logical counters exactly. The op mix is driven by the
/// same fan-out stream that seeds the policy RNG.
#[test]
fn stm_same_seed_identical_stats() {
    let run = |seed: u64| -> EngineStats {
        let mut fan = SeedFanout::new(seed);
        let policy_rng = fan.stream();
        let mut mix = fan.stream();
        let stm = Stm::new(TStack::words(64), 1);
        let st = TStack::new(0, 64);
        let mut ctx = TxCtx::new(&stm, 0, RandRa, policy_rng);
        for _ in 0..2_000 {
            if uniform01(&mut mix) < 0.6 {
                ctx.run(|tx| st.push(tx, 1));
            } else {
                ctx.run(|tx| st.pop(tx));
            }
        }
        ctx.stats
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b);
    assert_eq!(a.commits, 2_000);
    assert_eq!(a.aborts, 0, "uncontended run must never abort");
}

/// The KV server runs real shard and client threads, so wall-clock fields
/// (latency histogram, wait cycles) vary between runs — but the *logical*
/// counters must not. This is the **steal-disabled exact-stats variant**:
/// with stealing off, shard-partitioned keys, and no cross-shard RMWs
/// there is no contention at all: same seed ⇒ identical commits, aborts
/// (= 0), sheds (= 0, capacity ≥ clients bounds the closed loop), and —
/// because all writes are commutative increments — the exact final heap.
/// (With stealing on, abort counts become timing-dependent — two
/// executors can race on a hot ring's keys — which is why the steal-on
/// tests below assert only placement-independent quantities.)
#[test]
fn server_same_seed_identical_logical_stats() {
    let run = |seed: u64| {
        let cfg = ServeConfig {
            shards: 2,
            clients: 3,
            ops_per_client: 400,
            keys: 128,
            zipf_s: 0.9,
            read_fraction: 0.5,
            rmw_fraction: 0.0,
            rmw_span: 2,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 16,
            steal: false,
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, NoDelay::requestor_aborts());
        let m = r.stats.merged();
        (m.commits, m.aborts, m.sheds, r.state_sum, r.state_checksum)
    };
    let a = run(21);
    assert_eq!(a, run(21), "same seed must reproduce every logical counter");
    let (commits, aborts, sheds, _, checksum) = a;
    assert_eq!(commits, 3 * 400, "every issued request must commit");
    assert_eq!(aborts, 0, "partitioned keys cannot conflict");
    assert_eq!(
        sheds, 0,
        "capacity ≥ clients keeps the closed loop admitted"
    );
    assert_ne!(
        run(22).4,
        checksum,
        "a different seed must draw different keys and land a different heap"
    );
}

/// Group-commit variant of the steal-disabled exact-stats test: batching
/// transactions into one clock bump must not change a single logical
/// counter *or* the heap. With stealing off, partitioned keys, and no
/// cross-shard RMWs, every popped batch folds into one conflict-free
/// group, so commits/aborts/sheds stay exact — and because grouping only
/// reorders commutative increments, the final checksum must equal the
/// grouping-OFF run of the same seed (observable state is independent of
/// commit grouping).
#[test]
fn server_steal_disabled_exact_stats_group_commit_both_modes() {
    let run = |seed: u64, group_commit: bool| {
        let cfg = ServeConfig {
            shards: 2,
            clients: 3,
            ops_per_client: 400,
            keys: 128,
            zipf_s: 0.9,
            read_fraction: 0.5,
            rmw_fraction: 0.0,
            rmw_span: 2,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 16,
            steal: false,
            group_commit,
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, NoDelay::requestor_aborts());
        let m = r.stats.merged();
        (m.commits, m.aborts, m.sheds, r.state_sum, r.state_checksum)
    };
    let grouped = run(21, true);
    assert_eq!(
        grouped,
        run(21, true),
        "same seed must reproduce every logical counter with grouping on"
    );
    let (commits, aborts, sheds, _, checksum) = grouped;
    assert_eq!(commits, 3 * 400, "every issued request must commit");
    assert_eq!(aborts, 0, "partitioned keys cannot conflict");
    assert_eq!(sheds, 0);
    assert_eq!(
        run(21, false).4,
        checksum,
        "the heap must be identical with grouping on and off"
    );
}

/// Open-loop, steal-disabled, group-commit-ON exact-stats variant: even
/// the per-shard commit tallies stay pure functions of the seed when
/// batches commit as groups, and nothing ever aborts or falls back
/// (partitioned keys make every group conflict-free).
#[test]
fn server_open_loop_steal_disabled_exact_stats_group_commit_on() {
    let run = |seed: u64| {
        let cfg = ServeConfig {
            shards: 2,
            clients: 3,
            ops_per_client: 400,
            keys: 128,
            zipf_s: 0.9,
            read_fraction: 0.5,
            rmw_fraction: 0.0,
            rmw_span: 1,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 4096,
            steal: false,
            group_commit: true,
            mode: LoadMode::Open {
                rate_per_client: 150_000.0,
                window: 64,
            },
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, NoDelay::requestor_aborts());
        let per_shard_commits: Vec<u64> = r.stats.per_thread.iter().map(|t| t.commits).collect();
        let m = r.stats.merged();
        (
            per_shard_commits,
            m.aborts,
            m.sheds,
            m.group_fallbacks,
            r.state_checksum,
        )
    };
    let a = run(51);
    assert_eq!(
        a,
        run(51),
        "steal-off per-shard stats must be exact across same-seed runs"
    );
    let (per_shard, aborts, sheds, fallbacks, _) = a;
    assert_eq!(per_shard.iter().sum::<u64>(), 3 * 400);
    assert_eq!(aborts, 0, "partitioned keys without stealing cannot abort");
    assert_eq!(sheds, 0);
    assert_eq!(fallbacks, 0, "conflict-free groups never fall back");
}

/// Under genuine cross-shard contention — and with work stealing
/// explicitly on, so envelopes may execute on any executor — the abort
/// counts become timing-dependent, but the *state* must stay a pure
/// function of the seed: commutative increments make the final heap
/// placement-independent, and with capacity ≥ clients no request is ever
/// shed.
#[test]
fn server_cross_shard_state_is_seed_deterministic() {
    let run = |seed: u64| {
        let cfg = ServeConfig {
            shards: 4,
            clients: 6,
            ops_per_client: 300,
            keys: 64,
            zipf_s: 1.1,
            read_fraction: 0.4,
            rmw_fraction: 0.4,
            rmw_span: 3,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 16,
            steal: true,
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, RandRw);
        let m = r.stats.merged();
        (
            m.commits,
            m.sheds,
            r.state_sum,
            r.state_checksum,
            r.increments_applied,
        )
    };
    let a = run(31);
    let b = run(31);
    assert_eq!(a, b, "logical outcome must survive real-thread racing");
    assert_eq!(a.0, 6 * 300);
    assert_eq!(a.1, 0);
    assert_eq!(a.2, a.4, "final heap must sum to the admitted increments");
}

/// Open-loop mode adds a seeded arrival *schedule* on top of the seeded
/// request sequence, and this variant runs with work stealing **on** (the
/// default): envelopes may execute on any executor, yet with capacity and
/// window sized above the offered burst nothing is ever shed, so the
/// logical outcome — admitted count, shed count, the exact final heap
/// checksum (commutative increments are placement-independent) — must be
/// identical across same-seed runs, and the schedule itself must diverge
/// between different seeds.
#[test]
fn server_open_loop_schedule_is_seed_deterministic() {
    let run = |seed: u64| {
        let cfg = ServeConfig {
            shards: 2,
            clients: 3,
            ops_per_client: 400,
            keys: 128,
            zipf_s: 0.9,
            read_fraction: 0.5,
            rmw_fraction: 0.2,
            rmw_span: 2,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 4096,
            steal: true,
            mode: LoadMode::Open {
                rate_per_client: 150_000.0,
                window: 64,
            },
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, RandRw);
        let m = r.stats.merged();
        (
            m.commits,
            m.sheds,
            r.state_sum,
            r.state_checksum,
            r.reply_faults,
        )
    };
    let a = run(41);
    assert_eq!(
        a,
        run(41),
        "same seed must reproduce admitted/shed counts and the heap"
    );
    let (commits, sheds, state_sum, checksum, reply_faults) = a;
    assert_eq!(commits, 3 * 400, "ample capacity admits every arrival");
    assert_eq!(sheds, 0);
    assert_eq!(reply_faults, 0);
    assert!(state_sum > 0, "increments must have landed");
    assert_ne!(
        run(42).3,
        checksum,
        "a different seed must draw a different schedule and heap"
    );
}

/// Open-loop, steal-disabled exact-stats variant: with stealing off and
/// no cross-shard RMWs, every shard executes exactly the requests routed
/// to it, so even the *per-shard* commit tallies — not just the global
/// ones — are pure functions of the seed, and nothing ever aborts.
#[test]
fn server_open_loop_steal_disabled_exact_stats() {
    let run = |seed: u64| {
        let cfg = ServeConfig {
            shards: 2,
            clients: 3,
            ops_per_client: 400,
            keys: 128,
            zipf_s: 0.9,
            read_fraction: 0.5,
            rmw_fraction: 0.0,
            rmw_span: 1,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 4096,
            steal: false,
            mode: LoadMode::Open {
                rate_per_client: 150_000.0,
                window: 64,
            },
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, NoDelay::requestor_aborts());
        let per_shard_commits: Vec<u64> = r.stats.per_thread.iter().map(|t| t.commits).collect();
        let m = r.stats.merged();
        (
            per_shard_commits,
            m.aborts,
            m.sheds,
            m.steals,
            r.state_checksum,
        )
    };
    let a = run(51);
    assert_eq!(
        a,
        run(51),
        "steal-off per-shard stats must be exact across same-seed runs"
    );
    let (per_shard, aborts, sheds, steals, _) = a;
    assert_eq!(per_shard.iter().sum::<u64>(), 3 * 400);
    assert_eq!(aborts, 0, "partitioned keys without stealing cannot abort");
    assert_eq!(sheds, 0);
    assert_eq!(steals, 0, "stealing is disabled");
}

/// Read-mode variant of the determinism suite: serving reads (including
/// multi-key `GetRange`/`GetMany` scans) through the MVCC snapshot fast
/// path instead of validated transactions must not change a single
/// observable — same seed ⇒ same final heap, and snapshot-on vs
/// snapshot-off agree on the checksum. With partitioned writes (no RMWs,
/// stealing off) the snapshot arm is conflict-free end to end: zero
/// aborts, zero read-side aborts, every read on the fast path. The
/// validated arm's scans *can* cross shards and take timing-dependent
/// validation aborts, which is exactly why only placement-independent
/// quantities are compared across modes.
#[test]
fn server_read_modes_same_seed_identical_state() {
    let run = |seed: u64, snapshot_reads: bool| {
        let cfg = ServeConfig {
            shards: 2,
            clients: 3,
            ops_per_client: 400,
            keys: 128,
            zipf_s: 0.9,
            read_fraction: 0.6,
            rmw_fraction: 0.0,
            rmw_span: 2,
            scan_fraction: 0.2,
            scan_span: 8,
            snapshot_reads,
            think_ns: 0,
            work_ns: 0,
            queue_capacity: 16,
            steal: false,
            seed,
            ..Default::default()
        };
        let r = run_server(&cfg, NoDelay::requestor_aborts());
        let m = r.stats.merged();
        (
            (m.commits, m.sheds, r.state_sum, r.state_checksum),
            (m.aborts, m.read_aborts, m.snapshot_reads),
        )
    };
    let (snap, snap_counters) = run(61, true);
    assert_eq!(
        snap,
        run(61, true).0,
        "same seed must reproduce the snapshot-mode outcome"
    );
    let (validated, _) = run(61, false);
    assert_eq!(
        snap, validated,
        "read mode must not change commits, sheds, or the final heap"
    );
    assert_eq!(snap.0, 3 * 400, "every issued request must commit");
    assert_eq!(
        snap.1, 0,
        "capacity ≥ clients keeps the closed loop admitted"
    );
    let (aborts, read_aborts, snapshot_reads) = snap_counters;
    assert_eq!(
        aborts, 0,
        "partitioned writes + snapshot reads cannot conflict"
    );
    assert_eq!(read_aborts, 0, "the snapshot fast path never aborts a read");
    assert!(snapshot_reads > 0, "reads must actually ride the fast path");
    assert_eq!(
        run(61, false).1 .2,
        0,
        "snapshot-off must not touch the fast path"
    );
    assert_ne!(
        run(62, true).0 .3,
        snap.3,
        "a different seed must land a different heap"
    );
}

/// The synthetic Figure 2 testbed reports through the same EngineStats;
/// its internal seeding must reproduce the f64 accumulators exactly.
#[test]
fn synthetic_testbed_same_seed_identical_stats() {
    let run = || {
        let cfg = SyntheticConfig {
            abort_cost: 2000.0,
            chain: 2,
            trials: 20_000,
            seed: 5,
        };
        let dist = Exponential::with_mean(500.0);
        run_synthetic(&cfg, &RemainingTime::FromLengths(&dist), &RandRw)
    };
    let a = run();
    assert_eq!(a, run());
    assert_eq!(a.trials, 20_000);
}
